//! A minimal seeded property-testing harness (the workspace's `proptest`
//! replacement).
//!
//! Model: a [`Strategy`] generates a value from a per-case RNG and can
//! propose *shrunk* candidates of a failing value; [`check`] drives a
//! configurable number of seeded cases, and on failure performs bounded
//! greedy shrinking and panics with the **case seed** so the exact input
//! can be replayed:
//!
//! ```text
//! property failed (case 17 of 24)
//!   case seed: 0x9a1f3b...  — reproduce with TESTKIT_SEED=0x9a1f3b...
//!   minimal failing input: ...
//! ```
//!
//! Setting the `TESTKIT_SEED` environment variable makes every property
//! in the test binary run exactly one case with that seed — the
//! reproduction workflow documented in README.md.
//!
//! Shrinking is *bounded* (at most [`Config::max_shrink_steps`] extra
//! property evaluations) and structural: ranges shrink toward their lower
//! bound / zero, vectors shrink by dropping suffixes, halves and single
//! elements and by shrinking elements in place, tuples shrink
//! component-wise. Mapped strategies ([`Strategy::map`]) and choices
//! ([`one_of`]) do not shrink through the mapping — the replayable case
//! seed is the reproduction mechanism there.

use crate::rng::{Rng, SplitMix64, Xoshiro256};
use std::fmt::Debug;
use std::ops::Range;

/// Harness configuration: case count, base seed, shrink budget.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; per-case seeds are SplitMix64 outputs derived from it.
    pub seed: u64,
    /// Maximum extra property evaluations spent shrinking a failure.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 32,
            seed: 0x5EED_0D15_EA5E_0001,
            max_shrink_steps: 512,
        }
    }
}

impl Config {
    /// Default configuration with a different case count.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// A value generator with optional shrinking.
pub trait Strategy {
    /// Generated value type.
    type Value: Clone + Debug;

    /// Draws one value from the case RNG.
    fn generate(&self, rng: &mut Xoshiro256) -> Self::Value;

    /// Proposes simpler candidates for a failing value (may be empty).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps the generated value (shrinking stops at the mapping).
    fn map<U: Clone + Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Uniform samples from a numeric range; shrinks toward the lower bound.
#[derive(Clone, Debug)]
pub struct RangeStrategy<T> {
    range: Range<T>,
}

/// Strategy over `lo..hi` for any sampleable numeric type.
pub fn range<T>(r: Range<T>) -> RangeStrategy<T> {
    RangeStrategy { range: r }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Xoshiro256) -> $t {
                rng.gen_range(self.range.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.range.start;
                let mut out = Vec::new();
                let mut v = *value;
                // Halve the distance to the lower bound (binary-search
                // phase), then step down by one (boundary refinement).
                while v != lo && out.len() < 8 {
                    let mid = lo + (v - lo) / 2;
                    out.push(mid);
                    v = mid;
                }
                if *value != lo && !out.contains(&(*value - 1)) {
                    out.push(*value - 1);
                }
                out
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for RangeStrategy<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Xoshiro256) -> f64 {
        rng.gen_range(self.range.clone())
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        // Move toward zero if the range contains it, else the low end.
        let target = if self.range.contains(&0.0) {
            0.0
        } else {
            self.range.start
        };
        let mut out = Vec::new();
        let mut v = *value;
        for _ in 0..8 {
            let mid = (v + target) / 2.0;
            if mid == v || (mid - target).abs() < 1e-12 {
                break;
            }
            out.push(mid);
            v = mid;
        }
        if *value != target {
            out.push(target);
        }
        out
    }
}

/// Any `u8` (all 256 values); shrinks toward 0.
#[derive(Clone, Debug)]
pub struct AnyU8;

/// Full-width `u8` strategy.
pub fn any_u8() -> AnyU8 {
    AnyU8
}

impl Strategy for AnyU8 {
    type Value = u8;
    fn generate(&self, rng: &mut Xoshiro256) -> u8 {
        rng.next_u64() as u8
    }
    fn shrink(&self, value: &u8) -> Vec<u8> {
        if *value == 0 {
            Vec::new()
        } else {
            vec![value >> 1, 0]
        }
    }
}

/// Any `u64`; shrinks toward 0.
#[derive(Clone, Debug)]
pub struct AnyU64;

/// Full-width `u64` strategy.
pub fn any_u64() -> AnyU64 {
    AnyU64
}

impl Strategy for AnyU64 {
    type Value = u64;
    fn generate(&self, rng: &mut Xoshiro256) -> u64 {
        rng.next_u64()
    }
    fn shrink(&self, value: &u64) -> Vec<u64> {
        if *value == 0 {
            Vec::new()
        } else {
            vec![value >> 1, value >> 8, 0]
        }
    }
}

/// Uniform `bool`.
#[derive(Clone, Debug)]
pub struct AnyBool;

/// Coin-flip strategy; shrinks `true` to `false`.
pub fn any_bool() -> AnyBool {
    AnyBool
}

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut Xoshiro256) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Mapped strategy (see [`Strategy::map`]).
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Clone + Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut Xoshiro256) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies producing the same value type.
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

/// `prop_oneof!` replacement: picks one arm uniformly per case.
pub fn one_of<T: Clone + Debug>(arms: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
    assert!(!arms.is_empty(), "one_of needs at least one arm");
    OneOf { arms }
}

impl<T: Clone + Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut Xoshiro256) -> T {
        let k = rng.gen_range(0usize..self.arms.len());
        self.arms[k].generate(rng)
    }
}

/// Vectors with a length drawn from `len` and elements from `elem`.
/// Shrinks by dropping suffixes/halves/single elements and by shrinking
/// elements in place (down to the minimum length).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// `proptest::collection::vec` replacement.
pub fn vec_of<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Xoshiro256) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.len.start;
        let mut out = Vec::new();
        let n = value.len();
        // Structural shrinks first: drop the back half, then suffix, then
        // each single element (front to back).
        if n > min {
            let half = min.max(n / 2);
            if half < n {
                out.push(value[..half].to_vec());
            }
            out.push(value[..n - 1].to_vec());
            for i in 0..n.min(16) {
                if n > min {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
        }
        // Element-wise shrinks (first shrink candidate per position).
        for i in 0..n.min(16) {
            if let Some(simpler) = self.elem.shrink(&value[i]).into_iter().next() {
                let mut v = value.clone();
                v[i] = simpler;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut Xoshiro256) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for simpler in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = simpler;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy!(
    (S0 / 0),
    (S0 / 0, S1 / 1),
    (S0 / 0, S1 / 1, S2 / 2),
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3),
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4),
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5),
);

/// Runs `prop` over `cfg.cases` seeded cases of `strategy`.
///
/// On failure: performs bounded shrinking, then panics with the failing
/// case seed (replayable via the `TESTKIT_SEED` environment variable),
/// the (possibly shrunk) input and the property's error message.
pub fn check<S: Strategy>(
    cfg: &Config,
    strategy: &S,
    prop: impl Fn(&S::Value) -> Result<(), String>,
) {
    if let Ok(text) = std::env::var("TESTKIT_SEED") {
        let seed = parse_seed(&text)
            .unwrap_or_else(|| panic!("TESTKIT_SEED '{text}' is not a decimal or 0x-hex u64"));
        run_case(cfg, strategy, &prop, seed, 0, 1);
        return;
    }
    for i in 0..cfg.cases {
        let case_seed = SplitMix64::nth_from(cfg.seed, i as u64);
        run_case(cfg, strategy, &prop, case_seed, i, cfg.cases);
    }
}

fn run_case<S: Strategy>(
    cfg: &Config,
    strategy: &S,
    prop: &impl Fn(&S::Value) -> Result<(), String>,
    case_seed: u64,
    index: u32,
    total: u32,
) {
    let mut rng = Xoshiro256::seed_from_u64(case_seed);
    let value = strategy.generate(&mut rng);
    if let Err(msg) = prop(&value) {
        let shrunk = shrink_failure(cfg, strategy, prop, value, msg);
        // Replaying with the case seed regenerates the *original*
        // failing input; the deterministic shrinker then re-derives the
        // same minimal one. The test name (cargo names each test's
        // thread after its path) makes the replay line copy-pasteable.
        let test = std::thread::current()
            .name()
            .map(|n| format!(" cargo test {n}"))
            .unwrap_or_default();
        panic!(
            "property failed (case {index} of {total})\n  \
             shrunk: {steps} accepted steps in {evals} shrink evaluations (budget {budget})\n  \
             minimal failing input: {minimal:?}\n  error: {msg}\n  \
             replay: TESTKIT_SEED={case_seed:#x}{test}",
            steps = shrunk.steps,
            evals = shrunk.evals,
            budget = cfg.max_shrink_steps,
            minimal = shrunk.value,
            msg = shrunk.msg,
        );
    }
}

struct Shrunk<V> {
    value: V,
    msg: String,
    /// Accepted (still-failing) shrink candidates.
    steps: u32,
    /// Property evaluations spent shrinking (accepted + rejected).
    evals: u32,
}

/// Greedy first-improvement shrinking, bounded by `max_shrink_steps`
/// property evaluations.
fn shrink_failure<S: Strategy>(
    cfg: &Config,
    strategy: &S,
    prop: &impl Fn(&S::Value) -> Result<(), String>,
    value: S::Value,
    msg: String,
) -> Shrunk<S::Value> {
    let mut out = Shrunk {
        value,
        msg,
        steps: 0,
        evals: 0,
    };
    'outer: while out.evals < cfg.max_shrink_steps {
        for candidate in strategy.shrink(&out.value) {
            if out.evals >= cfg.max_shrink_steps {
                break 'outer;
            }
            out.evals += 1;
            if let Err(m) = prop(&candidate) {
                out.value = candidate;
                out.msg = m;
                out.steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    out
}

fn parse_seed(text: &str) -> Option<u64> {
    let t = text.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// `proptest::prop_assert!` replacement: early-returns `Err(String)` from
/// the property closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `proptest::prop_assert_eq!` replacement.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                a,
                b
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config::with_cases(24);
        let counter = std::cell::Cell::new(0u32);
        check(&cfg, &range(0u64..100), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        assert_eq!(counter.get(), 24);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let cfg = Config::with_cases(64);
        let result = std::panic::catch_unwind(|| {
            check(&cfg, &range(0u64..1000), |&v| {
                if v >= 10 {
                    Err(format!("{v} too big"))
                } else {
                    Ok(())
                }
            });
        });
        let err = result.expect_err("property must fail");
        let text = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert!(text.contains("TESTKIT_SEED=0x"), "no seed in: {text}");
        // Greedy halving toward the range's lower bound lands exactly on
        // the smallest failing value.
        assert!(
            text.contains("minimal failing input: 10"),
            "did not shrink to 10: {text}"
        );
    }

    #[test]
    fn failure_message_has_copy_pasteable_replay_line() {
        let cfg = Config::with_cases(16);
        let result = std::panic::catch_unwind(|| {
            check(&cfg, &range(0u64..100), |&v| {
                if v >= 5 {
                    Err("too big".into())
                } else {
                    Ok(())
                }
            });
        });
        let text = result
            .expect_err("must fail")
            .downcast_ref::<String>()
            .cloned()
            .unwrap();
        // Shrink accounting: accepted steps, total evaluations, budget.
        assert!(
            text.contains("accepted steps in") && text.contains("shrink evaluations"),
            "no shrink accounting in: {text}"
        );
        // The replay line carries the seed and (under cargo test) the
        // test's own name, so it can be pasted verbatim.
        let replay = text
            .lines()
            .find(|l| l.trim_start().starts_with("replay:"))
            .unwrap_or_else(|| panic!("no replay line in: {text}"));
        assert!(replay.contains("TESTKIT_SEED=0x"), "{replay}");
        assert!(
            replay.contains("cargo test") && replay.contains("copy_pasteable_replay_line"),
            "replay line not pasteable: {replay}"
        );
    }

    #[test]
    fn vec_shrinking_drops_irrelevant_elements() {
        let cfg = Config {
            cases: 64,
            max_shrink_steps: 2000,
            ..Config::default()
        };
        let strat = vec_of(range(0u64..100), 1..40);
        let result = std::panic::catch_unwind(|| {
            check(&cfg, &strat, |v| {
                if v.iter().any(|&x| x >= 90) {
                    Err("contains a large element".into())
                } else {
                    Ok(())
                }
            });
        });
        let text = result
            .expect_err("must fail")
            .downcast_ref::<String>()
            .cloned()
            .unwrap();
        // The minimal counterexample is a single large element.
        let input = text
            .split("minimal failing input: ")
            .nth(1)
            .unwrap()
            .split('\n')
            .next()
            .unwrap();
        let elems = input.matches(',').count() + 1;
        assert!(elems <= 2, "poorly shrunk vector: {input}");
    }

    #[test]
    fn tuples_generate_and_shrink_componentwise() {
        let cfg = Config::with_cases(32);
        check(&cfg, &(range(0u64..8), any_bool()), |&(v, _)| {
            prop_assert!(v < 8, "range violated: {v}");
            Ok(())
        });
    }

    #[test]
    fn cases_are_deterministic_for_a_fixed_seed() {
        let cfg = Config::default();
        let collect = || {
            let out = std::cell::RefCell::new(Vec::new());
            check(&cfg, &range(0u64..1_000_000), |&v| {
                out.borrow_mut().push(v);
                Ok(())
            });
            out.into_inner()
        };
        assert_eq!(collect(), collect());
    }
}
