//! Deterministic pseudo-random number generation.
//!
//! Two reference-quality generators with a `rand`-like surface:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer; one multiply-xor
//!   pipeline per output. Used for seeding and seed-derivation (every
//!   property-test case seed is a SplitMix64 output).
//! * [`Xoshiro256`] — Blackman/Vigna's xoshiro256\*\*, the workhorse
//!   generator behind grid workloads and property-test case generation.
//!
//! Both are exact ports of the public-domain reference C implementations,
//! pinned by known-answer tests below, so workload bytes are reproducible
//! across toolchains and platforms.

use std::ops::{Range, RangeInclusive};

/// Generator interface: a 64-bit source plus derived samplers.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range, e.g. `rng.gen_range(-1.0..1.0)` or
    /// `rng.gen_range(0usize..n)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        SampleRange::sample(range, self)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    fn gen_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_unit_f64() < p
    }

    /// Uniform `u64` below `bound` (> 0) via 128-bit multiply-shift.
    fn gen_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// SplitMix64 (Steele, Lea, Flood 2014). Public-domain reference mixer.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator starting from the given state.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The `n`-th output after the seed (0-based), without mutating.
    pub fn nth_from(seed: u64, n: u64) -> u64 {
        let mut g = SplitMix64::new(seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        g.next_u64()
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* (Blackman, Vigna 2018). Public-domain reference
/// generator; 256-bit state, seeded from a single `u64` via SplitMix64.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the 256-bit state with four SplitMix64 outputs (the seeding
    /// scheme the generator's authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand`'s
/// `gen_range(lo..hi)` call shape.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end);
        self.start + (self.end - self.start) * rng.gen_unit_f64()
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.gen_below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.gen_below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors from the public-domain reference C
    /// implementation of SplitMix64 (seed 0 and seed 42).
    #[test]
    fn splitmix64_known_answers() {
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(g.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(g.next_u64(), 0x06c4_5d18_8009_454f);
        let mut g = SplitMix64::new(42);
        assert_eq!(g.next_u64(), 0xbdd7_3226_2feb_6e95);
        assert_eq!(g.next_u64(), 0x28ef_e333_b266_f103);
    }

    /// The first xoshiro256** output for the all-ones state per the
    /// reference implementation: rotl(1 * 5, 7) * 9 = 5760.
    #[test]
    fn xoshiro_first_output_matches_reference_arithmetic() {
        let mut g = Xoshiro256 { s: [1, 1, 1, 1] };
        assert_eq!(g.next_u64(), 5760);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        let mut c = Xoshiro256::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_range_bounds_hold() {
        let mut g = Xoshiro256::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = g.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut g = Xoshiro256::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: usize = g.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v: i32 = g.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn unit_f64_has_53_bit_resolution() {
        let mut g = Xoshiro256::seed_from_u64(3);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let v = g.gen_unit_f64();
            assert!((0.0..1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 0.01 && max > 0.99, "poor spread: [{min}, {max}]");
    }

    #[test]
    fn nth_from_is_stable() {
        assert_eq!(SplitMix64::nth_from(9, 0), SplitMix64::nth_from(9, 0));
        assert_ne!(SplitMix64::nth_from(9, 0), SplitMix64::nth_from(9, 1));
    }
}
