//! A hand-rolled JSON value model and writer (the workspace's
//! `serde`/`serde_json` replacement).
//!
//! Producers implement [`ToJson`] and build a [`Json`] tree; the writer
//! emits compact ([`Json::to_compact`]) or pretty two-space-indented
//! ([`Json::to_pretty`]) text with full string escaping. Integers are
//! kept distinct from floats so 64-bit counters serialize exactly.

use std::fmt::Write as _;

/// A JSON document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer (serialized exactly).
    Int(i64),
    /// Unsigned integer (serialized exactly).
    UInt(u64),
    /// Floating point; non-finite values serialize as `null` (JSON has
    /// no NaN/Infinity).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from `(key, value)` pairs.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Array from values.
    pub fn array<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's shortest-roundtrip Display; force a decimal
                    // point so the value reads back as a float.
                    let text = format!("{x}");
                    out.push_str(&text);
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree — the workspace's `serde::Serialize`
/// replacement.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

macro_rules! impl_tojson_int {
    (signed: $($s:ty),*; unsigned: $($u:ty),*) => {
        $(impl ToJson for $s {
            fn to_json(&self) -> Json { Json::Int(*self as i64) }
        })*
        $(impl ToJson for $u {
            fn to_json(&self) -> Json { Json::UInt(*self as u64) }
        })*
    };
}

impl_tojson_int!(signed: i8, i16, i32, i64, isize; unsigned: u8, u16, u32, u64, usize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let j = Json::Str("a\"b\\c\nd\te\u{01}f".into());
        assert_eq!(j.to_compact(), r#""a\"b\\c\nd\te\u0001f""#);
    }

    #[test]
    fn integers_serialize_exactly() {
        assert_eq!(Json::UInt(u64::MAX).to_compact(), "18446744073709551615");
        assert_eq!(Json::Int(-42).to_compact(), "-42");
    }

    #[test]
    fn floats_get_decimal_points_and_nonfinite_becomes_null() {
        assert_eq!(Json::Num(2.0).to_compact(), "2.0");
        assert_eq!(Json::Num(0.125).to_compact(), "0.125");
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn nested_objects_round_trip_against_fixture() {
        let doc = Json::object([
            ("label", "star2d9p/HStencil".to_json()),
            ("cycles", 123456u64.to_json()),
            ("ipc", 3.25.to_json()),
            (
                "mem",
                Json::object([
                    ("l1_hits", 99u64.to_json()),
                    ("rates", vec![0.5, 1.0].to_json()),
                ]),
            ),
            ("empty", Json::array([])),
        ]);
        let fixture = "{\n  \"label\": \"star2d9p/HStencil\",\n  \"cycles\": 123456,\n  \
                       \"ipc\": 3.25,\n  \"mem\": {\n    \"l1_hits\": 99,\n    \
                       \"rates\": [\n      0.5,\n      1.0\n    ]\n  },\n  \"empty\": []\n}";
        assert_eq!(doc.to_pretty(), fixture);
        assert_eq!(
            doc.to_compact(),
            "{\"label\":\"star2d9p/HStencil\",\"cycles\":123456,\"ipc\":3.25,\
             \"mem\":{\"l1_hits\":99,\"rates\":[0.5,1.0]},\"empty\":[]}"
        );
    }

    #[test]
    fn option_and_arrays() {
        assert_eq!(Some(1u64).to_json().to_compact(), "1");
        assert_eq!(None::<u64>.to_json().to_compact(), "null");
        assert_eq!([1u64, 2, 3].to_json().to_compact(), "[1,2,3]");
    }
}
