//! A hand-rolled JSON value model, writer **and reader** (the
//! workspace's `serde`/`serde_json` replacement).
//!
//! Producers implement [`ToJson`] and build a [`Json`] tree; the writer
//! emits compact ([`Json::to_compact`]) or pretty two-space-indented
//! ([`Json::to_pretty`]) text with full string escaping. Integers are
//! kept distinct from floats so 64-bit counters serialize exactly.
//!
//! The reader ([`Json::parse`]) is a recursive-descent parser over the
//! same value model; `scripts/verify.sh` uses it (via the bench crate's
//! `check_bench_json` binary) to gate on emitted artifacts like
//! `BENCH_native.json` being well-formed. Numbers without a fraction or
//! exponent read back as [`Json::Int`]/[`Json::UInt`], everything else
//! as [`Json::Num`], so writer output round-trips exactly.

use std::fmt::Write as _;

/// A JSON document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer (serialized exactly).
    Int(i64),
    /// Unsigned integer (serialized exactly).
    UInt(u64),
    /// Floating point; non-finite values serialize as `null` (JSON has
    /// no NaN/Infinity).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from `(key, value)` pairs.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Array from values.
    pub fn array<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's shortest-roundtrip Display; force a decimal
                    // point so the value reads back as a float.
                    let text = format!("{x}");
                    out.push_str(&text);
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }
}

/// A [`Json::parse`] failure: what went wrong and the byte offset it
/// went wrong at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parses a JSON document (the testkit JSON reader). Trailing
    /// whitespace is allowed; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64` (ints widen; `None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// String value (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items (`None` for non-arrays).
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Json::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                self.depth += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    if self.peek() != Some(b'"') {
                        return Err(self.err("expected string key in object"));
                    }
                    let key = self.string()?;
                    self.skip_ws();
                    if self.peek() != Some(b':') {
                        return Err(self.err("expected ':' after object key"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let v = self.value()?;
                    pairs.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}' in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy the whole run of plain bytes up to the next
                    // quote, escape, or control byte in one slice. The
                    // run can only end on an ASCII byte, so it never
                    // splits a multi-byte UTF-8 character (input came
                    // from &str, continuation bytes are all >= 0x80).
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => Err(ParseError {
                pos: start,
                msg: format!("invalid number '{text}'"),
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree — the workspace's `serde::Serialize`
/// replacement.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

macro_rules! impl_tojson_int {
    (signed: $($s:ty),*; unsigned: $($u:ty),*) => {
        $(impl ToJson for $s {
            fn to_json(&self) -> Json { Json::Int(*self as i64) }
        })*
        $(impl ToJson for $u {
            fn to_json(&self) -> Json { Json::UInt(*self as u64) }
        })*
    };
}

impl_tojson_int!(signed: i8, i16, i32, i64, isize; unsigned: u8, u16, u32, u64, usize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let j = Json::Str("a\"b\\c\nd\te\u{01}f".into());
        assert_eq!(j.to_compact(), r#""a\"b\\c\nd\te\u0001f""#);
    }

    #[test]
    fn integers_serialize_exactly() {
        assert_eq!(Json::UInt(u64::MAX).to_compact(), "18446744073709551615");
        assert_eq!(Json::Int(-42).to_compact(), "-42");
    }

    #[test]
    fn floats_get_decimal_points_and_nonfinite_becomes_null() {
        assert_eq!(Json::Num(2.0).to_compact(), "2.0");
        assert_eq!(Json::Num(0.125).to_compact(), "0.125");
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn nested_objects_round_trip_against_fixture() {
        let doc = Json::object([
            ("label", "star2d9p/HStencil".to_json()),
            ("cycles", 123456u64.to_json()),
            ("ipc", 3.25.to_json()),
            (
                "mem",
                Json::object([
                    ("l1_hits", 99u64.to_json()),
                    ("rates", vec![0.5, 1.0].to_json()),
                ]),
            ),
            ("empty", Json::array([])),
        ]);
        let fixture = "{\n  \"label\": \"star2d9p/HStencil\",\n  \"cycles\": 123456,\n  \
                       \"ipc\": 3.25,\n  \"mem\": {\n    \"l1_hits\": 99,\n    \
                       \"rates\": [\n      0.5,\n      1.0\n    ]\n  },\n  \"empty\": []\n}";
        assert_eq!(doc.to_pretty(), fixture);
        assert_eq!(
            doc.to_compact(),
            "{\"label\":\"star2d9p/HStencil\",\"cycles\":123456,\"ipc\":3.25,\
             \"mem\":{\"l1_hits\":99,\"rates\":[0.5,1.0]},\"empty\":[]}"
        );
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let doc = Json::object([
            ("label", "star2d9p/HStencil \"q\"\n".to_json()),
            ("cycles", 123456u64.to_json()),
            ("neg", (-42i64).to_json()),
            ("ipc", 3.25.to_json()),
            ("flag", true.to_json()),
            ("nothing", Json::Null),
            ("rates", vec![0.5, 1.0, 1e-9].to_json()),
            ("empty_obj", Json::object::<&str, _>([])),
            ("empty_arr", Json::array([])),
        ]);
        assert_eq!(Json::parse(&doc.to_pretty()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.to_compact()).unwrap(), doc);
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        assert_eq!(
            Json::parse(r#""aAé😀""#).unwrap(),
            Json::Str("aAé😀".into())
        );
        assert_eq!(Json::parse("\"π → ∞\"").unwrap(), Json::Str("π → ∞".into()));
    }

    #[test]
    fn parser_number_taxonomy() {
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.0").unwrap(), Json::Num(2.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("-0.125").unwrap(), Json::Num(-0.125));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "nul",
            "1..2",
            "\"abc",
            "[1] x",
            "{\"a\":}",
            "'single'",
            "[01e]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = Json::parse("[1, 2, oops]").unwrap_err();
        assert!(err.pos > 0 && err.to_string().contains("byte"));
    }

    #[test]
    fn accessors_navigate_parsed_trees() {
        let doc = Json::parse(r#"{"results":[{"median_s":0.5,"n":3}],"name":"x"}"#).unwrap();
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("x"));
        let results = doc.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results[0].get("median_s").and_then(Json::as_f64), Some(0.5));
        assert_eq!(results[0].get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
    }

    #[test]
    fn option_and_arrays() {
        assert_eq!(Some(1u64).to_json().to_compact(), "1");
        assert_eq!(None::<u64>.to_json().to_compact(), "null");
        assert_eq!([1u64, 2, 3].to_json().to_compact(), "[1,2,3]");
    }
}
