//! A `std::time` micro-benchmark harness (the workspace's `criterion`
//! replacement) for `harness = false` bench targets.
//!
//! Each benchmark runs `warmup` untimed iterations followed by
//! `sample_size` timed iterations and reports median / p10 / p90 wall
//! time plus derived element throughput:
//!
//! ```text
//! engine/compute_mix_10k        median 1.234 ms  p10 1.198 ms  p90 1.402 ms  (8.1 Melem/s)
//! ```
//!
//! A substring filter can be passed on the command line (as `cargo bench
//! -- <filter>` does) to run a subset of benchmarks.

use std::time::Instant;

/// Summary statistics over one benchmark's timed samples (seconds).
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    /// Median sample.
    pub median: f64,
    /// 10th percentile.
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of timed samples.
    pub samples: usize,
}

impl Summary {
    /// Computes a summary from raw samples (need not be sorted).
    pub fn from_samples(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty());
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pick = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        Summary {
            median: pick(0.5),
            p10: pick(0.1),
            p90: pick(0.9),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            samples: sorted.len(),
        }
    }
}

/// Top-level harness: owns the CLI filter and runs groups.
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Harness with the filter taken from the process arguments
    /// (first argument that is not a `--flag`).
    pub fn from_args() -> Harness {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Harness { filter }
    }

    /// Starts a named group of related benchmarks.
    pub fn group(&self, name: &str) -> BenchGroup<'_> {
        BenchGroup {
            harness: self,
            name: name.to_string(),
            warmup: 3,
            sample_size: 10,
            throughput_elems: None,
        }
    }

    fn selected(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of benchmarks sharing warmup/sample/throughput settings.
pub struct BenchGroup<'a> {
    harness: &'a Harness,
    name: String,
    warmup: usize,
    sample_size: usize,
    throughput_elems: Option<u64>,
}

impl BenchGroup<'_> {
    /// Sets the number of timed samples (default 10).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Sets the number of untimed warmup iterations (default 3).
    pub fn warmup(mut self, n: usize) -> Self {
        self.warmup = n;
        self
    }

    /// Declares elements processed per iteration, enabling a
    /// `elem/s` column.
    pub fn throughput_elems(mut self, n: u64) -> Self {
        self.throughput_elems = Some(n);
        self
    }

    /// Runs one benchmark and prints its summary line. The closure's
    /// return value is passed through `std::hint::black_box` so the
    /// compiler cannot elide the work.
    pub fn bench<R>(&self, id: &str, mut f: impl FnMut() -> R) -> Option<Summary> {
        let full = format!("{}/{id}", self.name);
        if !self.harness.selected(&full) {
            return None;
        }
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples.push(t0.elapsed().as_secs_f64());
        }
        let s = Summary::from_samples(&samples);
        let tput = match self.throughput_elems {
            Some(n) if s.median > 0.0 => format!("  ({}/s)", si(n as f64 / s.median)),
            _ => String::new(),
        };
        println!(
            "{full:<40} median {}  p10 {}  p90 {}{tput}",
            time(s.median),
            time(s.p10),
            time(s.p90),
        );
        Some(s)
    }
}

/// Human time formatting (s / ms / µs / ns).
fn time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// SI-prefixed rate formatting.
fn si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} Gelem", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} Melem", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} kelem", rate / 1e3)
    } else {
        format!("{rate:.0} elem")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_percentiles() {
        let samples: Vec<f64> = (1..=11).map(|i| i as f64).collect();
        let s = Summary::from_samples(&samples);
        assert_eq!(s.median, 6.0);
        assert_eq!(s.p10, 2.0);
        assert_eq!(s.p90, 10.0);
        assert_eq!(s.samples, 11);
        assert!((s.mean - 6.0).abs() < 1e-12);
    }

    #[test]
    fn bench_runs_requested_iterations() {
        let h = Harness { filter: None };
        let count = std::cell::Cell::new(0usize);
        let s = h
            .group("g")
            .warmup(2)
            .sample_size(5)
            .bench("b", || count.set(count.get() + 1))
            .expect("selected");
        assert_eq!(count.get(), 7); // 2 warmup + 5 timed
        assert_eq!(s.samples, 5);
    }

    #[test]
    fn filter_skips_unmatched_benchmarks() {
        let h = Harness {
            filter: Some("other".into()),
        };
        let ran = std::cell::Cell::new(false);
        let s = h.group("g").bench("b", || ran.set(true));
        assert!(s.is_none());
        assert!(!ran.get());
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert_eq!(time(2.5), "2.500 s");
        assert_eq!(time(2.5e-3), "2.500 ms");
        assert_eq!(time(2.5e-6), "2.500 µs");
        assert_eq!(time(2.5e-9), "2.5 ns");
    }
}
