#!/usr/bin/env bash
# Perf diff between two BENCH_native.json artifacts.
#
#   scripts/bench_diff.sh OLD.json NEW.json [--threshold=0.90] [--fail-on-regression]
#
# Prints per-case median ratios (old/new; > 1.00 means NEW is faster)
# and flags cases below the threshold. Report-only by default — pass
# --fail-on-regression to turn regressions into a nonzero exit, e.g.
# when replacing the committed baseline after a deliberate perf change:
#
#   scripts/bench_diff.sh BENCH_native.json target/BENCH_native.new.json \
#       --threshold=0.95 --fail-on-regression
#
# The heavy lifting lives in the workspace `bench_diff` binary so the
# JSON parsing stays on the hermetic testkit reader (no jq dependency).
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -q --release --offline -p hstencil-bench --bin bench_diff -- "$@"
