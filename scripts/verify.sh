#!/usr/bin/env bash
# Hermetic-build verification: the workspace must build, test, and bench
# with zero network access and zero non-workspace crates in the
# dependency graph (DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

WORKSPACE_CRATES="hstencil hstencil-testkit hstencil-core hstencil-bench hstencil-conformance lx2-isa lx2-sim"

# The gates below change meaning with the host's ISA: the avx512
# conformance variants and bench group register only where avx512f
# exists, and check_bench_json skips width gates whose rows are absent.
# Print what this host has so a log line explains any skip notices.
host_features() {
    local flags have=""
    flags="$(grep -m1 '^flags' /proc/cpuinfo 2>/dev/null || true)"
    for f in avx2 fma avx512f; do
        case " $flags " in
            *" $f "*) have="$have $f" ;;
            *) have="$have !$f" ;;
        esac
    done
    echo "$have"
}
echo "==> host CPU features:$(host_features)"

echo "==> formatting gate"
cargo fmt --check

echo "==> clippy gate (all targets, warnings are errors)"
cargo clippy -q --workspace --offline --all-targets -- -D warnings

echo "==> rustdoc gate (no-deps, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --workspace --offline

echo "==> offline release build"
cargo build --release --workspace --offline

echo "==> offline test suite"
cargo test -q --workspace --offline

echo "==> conformance matrix (fast tier; CONFORMANCE_EXHAUSTIVE=1 widens it)"
# Differential + metamorphic matrix over every registered variant,
# golden lx2-sim traces, fault-injection self-check.
cargo test -q -p hstencil-conformance --offline

echo "==> conformance coverage artifact"
COVERAGE_JSON="$PWD/target/CONFORMANCE.json"
rm -f "$COVERAGE_JSON"
cargo bench -p hstencil-conformance --bench coverage --offline -- "--out=$COVERAGE_JSON"
if [ ! -f "$COVERAGE_JSON" ]; then
    echo "ERROR: coverage run did not produce $COVERAGE_JSON" >&2
    exit 1
fi

echo "==> dependency-graph audit (workspace crates only)"
# Every node in the resolved graph must be one of ours; any external
# crate name here means the hermetic policy was broken.
tree="$(cargo tree --workspace --offline --edges normal,dev,build --prefix none --format '{p}')"
bad="$(echo "$tree" | awk 'NF {print $1}' | sort -u | grep -vxF -e ${WORKSPACE_CRATES// / -e } || true)"
if [ -n "$bad" ]; then
    echo "ERROR: non-workspace crates in the dependency graph:" >&2
    echo "$bad" >&2
    exit 1
fi
echo "    graph contains only: $(echo "$tree" | awk 'NF {print $1}' | sort -u | tr '\n' ' ')"

echo "==> native executor bench (smoke: 1 sample per config)"
# Smoke numbers are meaningless as a baseline, so write them to a
# scratch path: the repo-root BENCH_native.json is the recorded
# wall-clock trajectory and must only be replaced by real (non-smoke)
# runs committed deliberately.
SMOKE_JSON="$PWD/target/BENCH_native.smoke.json"
rm -f "$SMOKE_JSON"
cargo bench -p hstencil-bench --bench native --offline -- --smoke "--out=$SMOKE_JSON"
if [ ! -f "$SMOKE_JSON" ]; then
    echo "ERROR: bench did not produce $SMOKE_JSON" >&2
    exit 1
fi
# Parse the artifact with the testkit JSON reader and check every
# configuration carries median/p10/p90 + throughput fields. The smoke
# gates (temporal 2048² >= 0.91, hybrid 4096² >= 0.4) are deliberately
# loose — one sample on a noisy shared host. The hybrid bound is the
# loosest: its staged non-temporal store path swings with co-tenant
# DRAM traffic (measured 1.36-1.45x on a quiet bus, ~0.75x when
# neighbors saturate it — DESIGN.md §10), so 0.4 only catches the
# catastrophic regression class (e.g. write-combining thrash, ~0.1x).
# The threads gate is equally loose in smoke (4 lanes must merely not
# be catastrophically slower than 1 on one noisy sample) and skips
# automatically on hosts with fewer than 4 cores. The f32 gate asks
# only that one noisy f32 sample not be slower than f64 at the
# in-cache size; it skips with a notice if the artifact has no f32
# rows at 256².
cargo run -q --release --offline -p hstencil-bench --bin check_bench_json -- "$SMOKE_JSON" --gate-temporal=2048:0.91 --gate-hybrid=4096:0.4 --gate-threads=4096:4:0.5 --gate-f32=256:1.0
# The committed baseline must still exist, parse, and keep the recorded
# speedups on the out-of-cache acceptance cases: the temporal fusion
# gate (ISSUE 4 — re-pinned at the ISSUE-6 baseline refresh: the
# recorded ratio is 1.20x on today's quiet DRAM bus vs 1.55x under the
# bus contention the ISSUE-4 baseline was recorded under; the naive
# ping-pong side is the more DRAM-bound of the pair, so the ratio
# tracks bus pressure — verified unchanged-code at both readings), the
# hybrid 8x8 register-tile kernel gate (ISSUE 5, >= 1.10x over
# avx2+fma on single-sweep 4096² star2d5p), and the multi-core scaling
# gate (ISSUE 6, >= 1.6x at 4 threads vs 1 on the same case — strict
# only when the baseline was recorded on a host that actually has
# >= 4 cores; check_bench_json skips it otherwise). The f32 width gate
# (ISSUE 7) holds the recorded in-cache 256² star2d5p f32 throughput
# at >= 1.3x the f64 ratio in the same artifact; it skips with a
# notice on baselines recorded before the dtype axis existed.
if [ ! -f BENCH_native.json ]; then
    echo "ERROR: recorded baseline BENCH_native.json is missing" >&2
    exit 1
fi
cargo run -q --release --offline -p hstencil-bench --bin check_bench_json -- BENCH_native.json --gate-temporal=4096:1.15 --gate-hybrid=4096:1.10 --gate-threads=4096:4:1.6 --gate-f32=256:1.3

echo "==> perf diff vs committed baseline (report-only)"
# Smoke samples are too noisy to gate on; this is a human-readable
# trend line. Deliberate baseline refreshes can rerun with
# --fail-on-regression (see scripts/bench_diff.sh).
./scripts/bench_diff.sh BENCH_native.json "$SMOKE_JSON" || true

echo "==> OK: hermetic build verified"
