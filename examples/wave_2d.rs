//! 2-D acoustic wave propagation with a custom high-order stencil.
//!
//! The second-order wave equation `u_tt = c² ∇²u` discretizes into a
//! three-level scheme whose spatial part is a radius-2 star Laplacian —
//! built here as a *custom* [`StencilSpec`] (fourth-order finite
//! difference), demonstrating that the framework is not limited to the
//! bundled presets. The Laplacian term runs through the library's native
//! executor each step; a ring wave expands from a point source.
//!
//! ```sh
//! cargo run --release --example wave_2d
//! ```

use hstencil::sim::MachineConfig;
use hstencil::{native, Grid2d, Method, StencilPlan, StencilSpec};

const N: usize = 120;
const STEPS: usize = 120;
/// Courant number squared (c·dt/dx)², kept well below stability limit.
const C2: f64 = 0.2;

/// Fourth-order accurate Laplacian weights: (-1/12, 4/3, -5/2, 4/3, -1/12)
/// per axis.
fn laplacian4() -> StencilSpec {
    let axis = [-1.0 / 12.0, 4.0 / 3.0, 0.0, 4.0 / 3.0, -1.0 / 12.0];
    let center = -5.0; // -5/2 per axis, two axes
    StencilSpec::star_2d("laplacian4", 2, center, &axis, &axis)
}

fn render(g: &Grid2d) {
    let ramp = [' ', '.', ':', '+', '#'];
    // Normalize against the current peak so the expanding (decaying)
    // ring stays visible at every time step.
    let mut peak = 1e-12f64;
    for i in 0..N as isize {
        for j in 0..N as isize {
            peak = peak.max(g.at(i, j).abs());
        }
    }
    for bi in 0..15 {
        let mut line = String::new();
        for bj in 0..30 {
            let i = (bi * N / 15) as isize;
            let j = (bj * N / 30) as isize;
            let v = g.at(i, j).abs() / peak * (ramp.len() as f64 - 1.0);
            let level = (v.round() as usize).min(ramp.len() - 1);
            line.push(ramp[level]);
        }
        println!("  {line}");
    }
}

fn main() {
    let lap = laplacian4();

    // Three time levels: prev, cur, next. Point source in the middle.
    let mut prev = Grid2d::zeros(N, N, lap.radius());
    let mut cur = Grid2d::zeros(N, N, lap.radius());
    cur.set(N as isize / 2, N as isize / 2, 1.0);
    prev.set(N as isize / 2, N as isize / 2, 1.0);

    let mut lap_buf = Grid2d::zeros(N, N, lap.radius());
    for step in 1..=STEPS {
        // u_next = 2 u - u_prev + C2 * Lap(u)
        native::apply_2d_parallel(&lap, &cur, &mut lap_buf, 2);
        let mut next = Grid2d::zeros(N, N, lap.radius());
        for i in 0..N as isize {
            for j in 0..N as isize {
                let v = 2.0 * cur.at(i, j) - prev.at(i, j) + C2 * lap_buf.at(i, j);
                next.set(i, j, v);
            }
        }
        prev = cur;
        cur = next;
        if step % 40 == 0 {
            println!("t = {step}:");
            render(&cur);
            println!();
        }
    }

    // The custom spec also runs on the simulated matrix-vector kernels —
    // star tables route their horizontal arm through vector MLA exactly
    // like the presets do.
    let out = StencilPlan::new(&lap, Method::HStencil)
        .verify(true)
        .run_2d(&MachineConfig::lx2(), &cur)
        .expect("custom stencil on the simulated machine");
    println!(
        "custom laplacian4 on simulated LX2 (HStencil): {} cycles, IPC {:.2}, verified.",
        out.report.cycles(),
        out.report.ipc()
    );
}
