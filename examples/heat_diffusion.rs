//! Heat diffusion: time-step the explicit Heat-2D stencil on the host
//! (fast native executor) and cross-check a step on the simulated machine.
//!
//! A hot square in a cold plate diffuses over 200 steps; the example
//! prints a coarse thermal map and the energy balance, then runs one step
//! through the HStencil kernel on the simulated LX2 to show both paths
//! agree bit-for-bit within tolerance.
//!
//! ```sh
//! cargo run --release --example heat_diffusion
//! ```

use hstencil::sim::MachineConfig;
use hstencil::{native, presets, Grid2d, Method, StencilPlan};

const N: usize = 96;
const STEPS: usize = 200;

fn total_heat(g: &Grid2d) -> f64 {
    (0..N as isize)
        .flat_map(|i| (0..N as isize).map(move |j| (i, j)))
        .map(|(i, j)| g.at(i, j))
        .sum()
}

fn thermal_map(g: &Grid2d) {
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    // Normalize to the current hottest cell so the cooling field stays
    // legible throughout the run.
    let mut peak = 1e-12f64;
    for i in 0..N as isize {
        for j in 0..N as isize {
            peak = peak.max(g.at(i, j));
        }
    }
    for bi in 0..12 {
        let mut line = String::new();
        for bj in 0..24 {
            let mut acc = 0.0;
            let mut cnt = 0.0;
            for i in (bi * N / 12)..((bi + 1) * N / 12) {
                for j in (bj * N / 24)..((bj + 1) * N / 24) {
                    acc += g.at(i as isize, j as isize);
                    cnt += 1.0;
                }
            }
            let level = ((acc / cnt / peak) * (shades.len() as f64 - 1.0)).round() as usize;
            line.push(shades[level.min(shades.len() - 1)]);
        }
        println!("  {line}");
    }
}

fn main() {
    let spec = presets::heat2d();

    // Hot square at 1.0 in a 0.0 plate; Dirichlet boundary at 0.
    let init = Grid2d::from_fn(N, N, spec.radius(), |i, j| {
        if (32..64).contains(&i) && (32..64).contains(&j) {
            1.0
        } else {
            0.0
        }
    });

    println!("t = 0:");
    thermal_map(&init);
    let h0 = total_heat(&init);

    // March on the host executor with 4 worker threads.
    let after = native::time_steps(&spec, &init, STEPS, 4);
    println!("\nt = {STEPS}:");
    thermal_map(&after);
    let h1 = total_heat(&after);
    println!(
        "\nheat: {h0:.1} -> {h1:.1} ({}% retained; anything lost leaked through the cold boundary)",
        (h1 / h0 * 100.0).round()
    );

    // Cross-check: one simulated HStencil step equals one native step.
    let mut native_next = init.clone();
    native::apply_2d(&spec, &init, &mut native_next);
    let sim = StencilPlan::new(&spec, Method::HStencil)
        .verify(true)
        .run_2d(&MachineConfig::lx2(), &init)
        .expect("simulated step");
    let diff = native_next.max_interior_diff(&sim.output);
    println!(
        "\nsimulated HStencil step vs native step: max |diff| = {diff:.2e}  \
         ({} cycles, IPC {:.2})",
        sim.report.cycles(),
        sim.report.ipc()
    );
    assert!(diff < 1e-12);
}
