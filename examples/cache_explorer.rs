//! Cache explorer: watch the memory system react as the working set
//! grows past L1 and L2, and see what spatial prefetch buys back.
//!
//! Reproduces the qualitative content of the paper's Tables 3 and 7 in
//! one sweep, printing the L1/L2 hit behaviour of the vector method, the
//! matrix-only method, and HStencil with and without software prefetch.
//!
//! ```sh
//! cargo run --release --example cache_explorer
//! ```

use hstencil::sim::MachineConfig;
use hstencil::{presets, Grid2d, Method, StencilPlan};

fn run(
    cfg: &MachineConfig,
    spec: &hstencil::StencilSpec,
    method: Method,
    n: usize,
    prefetch: bool,
) -> hstencil::RunReport {
    let grid = Grid2d::from_fn(n, n, spec.radius(), |i, j| {
        ((i * 7 + j * 13) % 101) as f64 * 0.01
    });
    StencilPlan::new(spec, method)
        .prefetch(prefetch)
        .warmup(0)
        .verify(n <= 256)
        .run_2d(cfg, &grid)
        .expect("run")
        .report
}

fn main() {
    let cfg = MachineConfig::lx2();
    let spec = presets::box2d25p();
    println!(
        "LX2 memory system: L1 {} KiB / L2 {} KiB / DRAM ~{} cycles\n",
        cfg.l1.size_bytes / 1024,
        cfg.l2.size_bytes / 1024,
        cfg.mem_latency
    );
    println!(
        "{:>10} {:>6} | {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "size", "KiB", "vec L1%", "mat L1%", "HS-pf L1%", "HS+pf L1%", "pf gain"
    );
    for n in [128usize, 256, 512, 1024, 2048, 4096] {
        let kib = n * n * 8 / 1024;
        let v = run(&cfg, &spec, Method::VectorOnly, n, false);
        let m = run(&cfg, &spec, Method::MatrixOnly, n, false);
        let h0 = run(&cfg, &spec, Method::HStencil, n, false);
        let h1 = run(&cfg, &spec, Method::HStencil, n, true);
        println!(
            "{:>10} {:>6} | {:>8.1}% {:>8.1}% | {:>8.1}% {:>8.1}% {:>8.2}x",
            format!("{n}x{n}"),
            kib,
            v.l1_load_hit_rate() * 100.0,
            m.l1_load_hit_rate() * 100.0,
            h0.l1_load_hit_rate() * 100.0,
            h1.l1_load_hit_rate() * 100.0,
            h0.cycles() as f64 / h1.cycles() as f64,
        );
    }
    println!(
        "\nThe vector method's full-row sweeps keep the hardware stream \
         prefetcher trained at any size;\nthe strip-major matrix methods \
         lose it once strips leave the caches — until software prefetch \
         (Algorithm 3) steps in."
    );
}
