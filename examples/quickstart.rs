//! Quickstart: run one stencil sweep with every method on the simulated
//! LX2 CPU and compare their performance counters.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hstencil::sim::MachineConfig;
use hstencil::{presets, Grid2d, Method, StencilPlan};

fn main() {
    // A 128x128 grid with a smooth bump in the middle; the halo carries
    // the (fixed) boundary values.
    let spec = presets::star2d9p();
    let grid = Grid2d::from_fn(128, 128, spec.radius(), |i, j| {
        let (x, y) = (i as f64 - 64.0, j as f64 - 64.0);
        (-(x * x + y * y) / 512.0).exp()
    });

    let cfg = MachineConfig::lx2();
    println!(
        "machine: {}  (matrix peak = {}x vector peak)\n",
        cfg.name, 4
    );

    let mut baseline_cycles = None;
    for method in Method::ALL {
        // Mat-ortho only supports star shapes; everything else runs.
        let plan = StencilPlan::new(&spec, method).verify(true);
        match plan.run_2d(&cfg, &grid) {
            Ok(out) => {
                let r = &out.report;
                let speedup = baseline_cycles
                    .map(|b: u64| format!("{:5.2}x", b as f64 / r.cycles() as f64))
                    .unwrap_or_else(|| "  1.00x (baseline)".into());
                if method == Method::Auto {
                    baseline_cycles = Some(r.cycles());
                }
                println!(
                    "{:<13} {:>9} cycles  IPC {:>4.2}  {:>6.3} GStencil/s  L1 {:>5.1}%  {}",
                    method.label(),
                    r.cycles(),
                    r.ipc(),
                    r.gstencil_per_s(),
                    r.l1_load_hit_rate() * 100.0,
                    speedup,
                );
            }
            Err(e) => println!("{:<13} unsupported: {e}", method.label()),
        }
    }

    println!("\nEvery simulated result above was verified against the scalar reference.");
}
