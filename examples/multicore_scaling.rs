//! Multi-core scaling: band-parallel stencil execution across simulated
//! cores with a shared-DRAM bandwidth ceiling (paper Figure 16 in
//! miniature).
//!
//! ```sh
//! cargo run --release --example multicore_scaling
//! ```

use hstencil::sim::MachineConfig;
use hstencil::{presets, run_multicore, Grid2d, Method, StencilPlan};

fn main() {
    let cfg = MachineConfig::lx2();
    let spec = presets::box2d9p();
    let n = 1024;
    let grid = Grid2d::from_fn(n, n, spec.radius(), |i, j| {
        ((i * 31 + j * 7) % 97) as f64 * 0.01
    });

    println!("Box-2D9P, {n}x{n}, banded across simulated LX2 cores:\n");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>12}",
        "cores", "GStencil/s", "speedup", "eff.", "bound"
    );
    let mut base = None;
    for cores in [1usize, 2, 4, 8, 16] {
        let plan = StencilPlan::new(&spec, Method::HStencil).warmup(0);
        let (out, rep) = run_multicore(&plan, &spec, &cfg, &grid, cores).expect("multicore run");
        // Spot-verify the assembled output against the reference.
        let mut want = grid.clone();
        hstencil::reference::apply_2d(&spec, &grid, &mut want);
        assert!(want.max_interior_diff(&out) < 1e-9);

        let gs = rep.gstencil_per_s();
        let b = *base.get_or_insert(gs);
        println!(
            "{:>6} {:>12.2} {:>11.2}x {:>9.0}% {:>12}",
            cores,
            gs,
            gs / b,
            gs / b / cores as f64 * 100.0,
            if rep.bandwidth_bound() {
                "DRAM bw"
            } else {
                "compute"
            },
        );
    }
    println!(
        "\nScaling flattens once the combined DRAM traffic of all bands \
         saturates the socket's bandwidth ceiling."
    );
}
