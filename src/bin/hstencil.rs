//! `hstencil` — command-line driver for the simulated stencil framework.
//!
//! ```text
//! hstencil list
//! hstencil run     --stencil star2d9p --method hstencil --size 256 --machine lx2
//! hstencil compare --stencil box2d25p --size 128 --machine lx2
//! hstencil asm     kernel.s            # assemble + execute a listing
//! ```

use hstencil::isa::assemble;
use hstencil::sim::{Machine, MachineConfig};
use hstencil::{presets, Grid2d, Method, StencilPlan, StencilSpec};
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let val = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "true".into());
            let consumed =
                if val == "true" && args.get(i + 1).map(|v| v.starts_with("--")).unwrap_or(true) {
                    1
                } else {
                    2
                };
            out.insert(key.to_string(), val);
            i += consumed;
        } else {
            i += 1;
        }
    }
    out
}

fn stencil_by_name(name: &str) -> Option<StencilSpec> {
    presets::suite_2d().into_iter().find(|s| s.name() == name)
}

fn method_by_name(name: &str) -> Option<Method> {
    match name.to_lowercase().as_str() {
        "auto" => Some(Method::Auto),
        "vector" | "vector-only" => Some(Method::VectorOnly),
        "matrix" | "matrix-only" | "stop" => Some(Method::MatrixOnly),
        "ortho" | "mat-ortho" => Some(Method::MatrixOrtho),
        "naive" | "naive-hybrid" => Some(Method::NaiveHybrid),
        "hstencil" => Some(Method::HStencil),
        _ => None,
    }
}

fn machine_by_name(name: &str) -> Option<MachineConfig> {
    match name.to_lowercase().as_str() {
        "lx2" => Some(MachineConfig::lx2()),
        "m4" | "apple-m4" => Some(MachineConfig::apple_m4()),
        _ => None,
    }
}

fn workload(n: usize, halo: usize) -> Grid2d {
    Grid2d::from_fn(n, n, halo, |i, j| {
        ((i * 131 + j * 37 + 11) % 251) as f64 * 0.008 - 1.0
    })
}

fn cmd_list() -> ExitCode {
    println!("stencils:");
    for s in presets::suite_2d() {
        println!(
            "  {:<10} {:?} r={} ({} points)",
            s.name(),
            s.pattern(),
            s.radius(),
            s.points()
        );
    }
    println!("\nmethods:   auto, vector, matrix (STOP), ortho, naive, hstencil");
    println!("machines:  lx2, m4");
    ExitCode::SUCCESS
}

fn cmd_run(flags: &HashMap<String, String>) -> ExitCode {
    let stencil = flags
        .get("stencil")
        .map(String::as_str)
        .unwrap_or("star2d9p");
    let method = flags
        .get("method")
        .map(String::as_str)
        .unwrap_or("hstencil");
    let machine = flags.get("machine").map(String::as_str).unwrap_or("lx2");
    let size: usize = flags
        .get("size")
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);
    let sweeps: usize = flags
        .get("sweeps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    let Some(spec) = stencil_by_name(stencil) else {
        eprintln!("unknown stencil '{stencil}' (try `hstencil list`)");
        return ExitCode::FAILURE;
    };
    let Some(method) = method_by_name(method) else {
        eprintln!("unknown method '{method}'");
        return ExitCode::FAILURE;
    };
    let Some(cfg) = machine_by_name(machine) else {
        eprintln!("unknown machine '{machine}'");
        return ExitCode::FAILURE;
    };

    let mut plan = StencilPlan::new(&spec, method)
        .sweeps(sweeps)
        .verify(size <= 512);
    if flags.contains_key("no-prefetch") {
        plan = plan.prefetch(false);
    }
    if flags.contains_key("no-scheduling") {
        plan = plan.scheduling(false).replacement(false);
    }
    if let Some(rb) = flags.get("reg-blocks").and_then(|v| v.parse().ok()) {
        plan = plan.reg_blocks(rb);
    }

    match plan.run_2d(&cfg, &workload(size, spec.radius())) {
        Ok(out) => {
            let r = &out.report;
            println!("{r}");
            println!(
                "  {} instructions, {:.3} cycles/point, {:.1} GFLOP/s, simulated {:.3} ms",
                r.counters.instructions,
                r.cycles_per_point(),
                r.gflops(),
                r.time_ms()
            );
            if let Some(u) = r.matrix_utilization() {
                println!("  matrix-unit utilization {:.1}%", u * 100.0);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_compare(flags: &HashMap<String, String>) -> ExitCode {
    let stencil = flags
        .get("stencil")
        .map(String::as_str)
        .unwrap_or("star2d9p");
    let machine = flags.get("machine").map(String::as_str).unwrap_or("lx2");
    let size: usize = flags
        .get("size")
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);
    let (Some(spec), Some(cfg)) = (stencil_by_name(stencil), machine_by_name(machine)) else {
        eprintln!("unknown stencil or machine");
        return ExitCode::FAILURE;
    };
    let grid = workload(size, spec.radius());
    println!("{} {}x{} on {}:", spec.name(), size, size, cfg.name);
    let mut baseline = None;
    for method in Method::ALL {
        match StencilPlan::new(&spec, method)
            .verify(size <= 512)
            .run_2d(&cfg, &grid)
        {
            Ok(out) => {
                let c = out.report.cycles();
                let base = *baseline.get_or_insert(c);
                println!(
                    "  {:<13} {:>12} cycles  IPC {:>5.2}  {:>6.2}x",
                    method.label(),
                    c,
                    out.report.ipc(),
                    base as f64 / c as f64
                );
            }
            Err(e) => println!("  {:<13} unsupported ({e})", method.label()),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_asm(path: &str) -> ExitCode {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match assemble(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut machine = Machine::new(&MachineConfig::lx2());
    machine.alloc(1 << 20, 8); // 1M elements of scratch at address 0
    match machine.execute(&program) {
        Ok(()) => {
            let c = machine.counters();
            println!(
                "{} instructions in {} cycles (IPC {:.2}); L1 {}/{} hits",
                c.instructions,
                c.cycles,
                c.ipc(),
                c.mem.l1_load_hits,
                c.mem.l1_load_accesses
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("execution failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args[1.min(args.len())..]);
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&flags),
        Some("compare") => cmd_compare(&flags),
        Some("asm") => match args.get(1) {
            Some(path) => cmd_asm(path),
            None => {
                eprintln!("usage: hstencil asm <file.s>");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!(
                "usage: hstencil <list|run|compare|asm> [--stencil S] [--method M] \
                 [--machine lx2|m4] [--size N] [--sweeps N] [--reg-blocks N] \
                 [--no-prefetch] [--no-scheduling]"
            );
            ExitCode::FAILURE
        }
    }
}
