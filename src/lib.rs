//! # hstencil
//!
//! Facade crate for the HStencil workspace — a Rust reproduction of
//! *"HStencil: Matrix-Vector Stencil Computation with Interleaved Outer
//! Product and MLA"* (SC '25).
//!
//! Re-exports the three layers:
//!
//! * [`isa`] — the SME-class instruction-set model (`lx2-isa`),
//! * [`sim`] — the functional + cycle-approximate machine simulator
//!   (`lx2-sim`),
//! * [`hstencil_core`]'s items at the crate root — stencil specifications,
//!   grids, kernel builders, execution plans and reports.
//!
//! See the workspace `README.md` for a quickstart and `DESIGN.md` for the
//! system inventory.

pub use hstencil_core::*;

/// Instruction-set model (re-export of `lx2-isa`).
pub mod isa {
    pub use lx2_isa::*;
}

/// Machine simulator (re-export of `lx2-sim`).
pub mod sim {
    pub use lx2_sim::*;
}
